// Command benchjson turns `go test -bench` output into the machine-readable
// perf-trajectory files (BENCH_*.json) the repository checks in: one record
// per benchmark with iterations, ns/op, B/op, allocs/op, and every custom
// metric (joins/s, …). Pipe the benchmark run through it:
//
//	go test -bench='BenchmarkJoin$' -benchmem -run='^$' . \
//	    | go run ./cmd/benchjson -out BENCH_control_plane.json
//
// `make bench-json` wires the hot control-plane benchmarks through exactly
// that pipeline. The benchmark output is echoed to stdout so the run stays
// readable in terminals and CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when the run used -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// OpsPerSec is derived from ns/op for trajectory comparisons.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Metrics carries custom b.ReportMetric units (e.g. "joins/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout of a BENCH_*.json.
type Report struct {
	Suite       string   `json:"suite"`
	GeneratedAt string   `json:"generated_at"`
	Goos        string   `json:"goos,omitempty"`
	Goarch      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout only)")
	suite := flag.String("suite", "control_plane", "suite name recorded in the report")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json to guard throughput against")
	guard := flag.String("guard", "", "regexp of benchmark names whose joins/s the guard checks")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional joins/s regression vs the baseline")
	memGuard := flag.String("memguard", "", "regexp of benchmark names whose B/op and allocs/op the guard checks")
	maxMemGrowth := flag.Float64("max-mem-growth", 0.25, "maximum allowed fractional B/op or allocs/op growth vs the baseline")
	deltaGuard := flag.String("deltaguard", "", "comma-separated candidate:reference benchmark pairs whose joins/s must stay within -max-delta of each other in this run")
	maxDelta := flag.Float64("max-delta", 0.05, "maximum allowed fractional joins/s shortfall of a -deltaguard candidate vs its reference")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin), *suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	}
	if *baseline != "" && *guard != "" {
		if err := guardThroughput(report, *baseline, *guard, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *baseline != "" && *memGuard != "" {
		if err := guardMemory(report, *baseline, *memGuard, *maxMemGrowth); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *deltaGuard != "" {
		if err := guardDelta(report, *deltaGuard, *maxDelta); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// guardDelta enforces paired-variant bounds inside one run — no baseline
// file involved, so the check is immune to machine-to-machine drift. Each
// pair reads "candidate:reference" (full sub-benchmark names, which may
// themselves contain '=' or '/'), and the candidate's joins/s must not fall
// more than the allowed fraction below the reference's. This is how the
// bench smoke pins the telemetry-on overhead of the join path.
func guardDelta(report *Report, spec string, maxDelta float64) error {
	// Repeated lines from -count>1 keep the best run per name, so each side
	// of a pair is compared at its own noise floor (best-of-N vs best-of-N).
	// A single sample of each variant swings past any tight bar on a busy
	// box; the best of several is what the code can actually do.
	byName := make(map[string]float64, len(report.Benchmarks))
	for _, b := range report.Benchmarks {
		if v, ok := b.Metrics[guardedMetric]; ok {
			name := stripCPUSuffix(b.Name)
			if v > byName[name] {
				byName[name] = v
			}
		}
	}
	var failures []string
	for _, pair := range strings.Split(spec, ",") {
		cand, ref, ok := strings.Cut(pair, ":")
		if !ok {
			return fmt.Errorf("bad -deltaguard pair %q (want candidate:reference)", pair)
		}
		cv, okC := byName[cand]
		rv, okR := byName[ref]
		if !okC || !okR {
			return fmt.Errorf("deltaguard pair %q: missing %s metric for %q and/or %q in this run",
				pair, guardedMetric, cand, ref)
		}
		floor := rv * (1 - maxDelta)
		if cv < floor {
			failures = append(failures, fmt.Sprintf("%s: %.0f %s vs %s %.0f (floor %.0f)",
				cand, cv, guardedMetric, ref, rv, floor))
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: deltaguard: %s %.0f %s vs %s %.0f ok (%+.1f%%)\n",
				cand, cv, guardedMetric, ref, rv, (cv/rv-1)*100)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("paired delta beyond %.0f%%:\n  %s",
			maxDelta*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// guardedMetric is the throughput metric the regression guard compares.
const guardedMetric = "joins/s"

// stripCPUSuffix drops the trailing -N GOMAXPROCS marker go test appends to
// benchmark names, so a run on an M-core machine compares against a baseline
// generated on an N-core one.
func stripCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// guardThroughput compares the fresh joins/s of every benchmark matching the
// guard pattern against the baseline report, and fails when any regresses by
// more than the allowed fraction. Benchmarks absent from the baseline (or
// carrying no joins/s in it) are skipped: new benchmarks must not fail the
// gate before the trajectory file is regenerated.
func guardThroughput(report *Report, baselinePath, guardPattern string, maxRegress float64) error {
	pat, err := regexp.Compile(guardPattern)
	if err != nil {
		return fmt.Errorf("bad -guard pattern: %w", err)
	}
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	baseline := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if v, ok := b.Metrics[guardedMetric]; ok {
			baseline[stripCPUSuffix(b.Name)] = v
		}
	}
	var failures []string
	checked := 0
	for _, b := range report.Benchmarks {
		name := stripCPUSuffix(b.Name)
		if !pat.MatchString(name) {
			continue
		}
		fresh, ok := b.Metrics[guardedMetric]
		if !ok {
			continue
		}
		want, ok := baseline[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: guard: %s not in baseline, skipping\n", name)
			continue
		}
		checked++
		floor := want * (1 - maxRegress)
		if fresh < floor {
			failures = append(failures, fmt.Sprintf("%s: %.0f %s, baseline %.0f (floor %.0f)",
				name, fresh, guardedMetric, want, floor))
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: guard: %s %.0f %s vs baseline %.0f ok\n",
				name, fresh, guardedMetric, want)
		}
	}
	if checked == 0 {
		return fmt.Errorf("guard %q matched no benchmark with a %s metric in both runs", guardPattern, guardedMetric)
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput regression beyond %.0f%%:\n  %s",
			maxRegress*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// loadBaseline reads and parses a baseline BENCH_*.json.
func loadBaseline(path string) (*Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return &base, nil
}

// guardMemory compares the fresh B/op and allocs/op of every benchmark
// matching the pattern against the baseline report, and fails when either
// grows by more than the allowed fraction. Unlike joins/s — which wobbles
// with scheduler noise at short -benchtime — the allocation profile of a
// benchmark iteration is near-deterministic, so the same 25% bar catches
// much smaller real regressions (a single new alloc on a 23-alloc path is
// +4%, three are +13%, a per-viewer slice copy blows straight through).
// Benchmarks absent from the baseline or run without -benchmem are skipped.
func guardMemory(report *Report, baselinePath, guardPattern string, maxGrowth float64) error {
	pat, err := regexp.Compile(guardPattern)
	if err != nil {
		return fmt.Errorf("bad -memguard pattern: %w", err)
	}
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	type memProfile struct{ bytes, allocs *float64 }
	baseline := make(map[string]memProfile, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[stripCPUSuffix(b.Name)] = memProfile{bytes: b.BytesPerOp, allocs: b.AllocsPerOp}
	}
	check := func(name, unit string, fresh, want *float64) (string, bool) {
		if fresh == nil || want == nil {
			return "", true
		}
		ceiling := *want * (1 + maxGrowth)
		if *fresh > ceiling {
			return fmt.Sprintf("%s: %.0f %s, baseline %.0f (ceiling %.0f)",
				name, *fresh, unit, *want, ceiling), false
		}
		fmt.Fprintf(os.Stderr, "benchjson: memguard: %s %.0f %s vs baseline %.0f ok\n",
			name, *fresh, unit, *want)
		return "", true
	}
	var failures []string
	checked := 0
	for _, b := range report.Benchmarks {
		name := stripCPUSuffix(b.Name)
		if !pat.MatchString(name) {
			continue
		}
		want, ok := baseline[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: memguard: %s not in baseline, skipping\n", name)
			continue
		}
		if b.BytesPerOp == nil && b.AllocsPerOp == nil {
			continue
		}
		if msg, ok := check(name, "B/op", b.BytesPerOp, want.bytes); !ok {
			failures = append(failures, msg)
		} else if msg == "" && b.BytesPerOp != nil && want.bytes != nil {
			checked++
		}
		if msg, ok := check(name, "allocs/op", b.AllocsPerOp, want.allocs); !ok {
			failures = append(failures, msg)
		} else if msg == "" && b.AllocsPerOp != nil && want.allocs != nil {
			checked++
		}
	}
	if checked == 0 && len(failures) == 0 {
		return fmt.Errorf("memguard %q matched no benchmark with B/op or allocs/op in both runs", guardPattern)
	}
	if len(failures) > 0 {
		return fmt.Errorf("memory growth beyond %.0f%%:\n  %s",
			maxGrowth*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// parse consumes `go test -bench` output, echoing every line, and collects
// the benchmark results and platform header lines.
func parse(sc *bufio.Scanner, suite string) (*Report, error) {
	report := &Report{
		Suite:       suite,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				report.Benchmarks = append(report.Benchmarks, res)
			}
		case strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "--- FAIL"):
			return nil, fmt.Errorf("benchmark run failed: %s", line)
		}
	}
	return report, sc.Err()
}

// parseLine parses one result line of the standard benchmark format:
//
//	BenchmarkJoin  60835  40313 ns/op  24806 joins/s  3275 B/op  29 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = value
			if value > 0 {
				res.OpsPerSec = 1e9 / value
			}
		case "B/op":
			v := value
			res.BytesPerOp = &v
		case "allocs/op":
			v := value
			res.AllocsPerOp = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = value
		}
	}
	return res, res.NsPerOp > 0
}
