package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: telecast
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkJoin 	   60835	     40313 ns/op	     24806 joins/s	    3275 B/op	      29 allocs/op
BenchmarkViewChange 	   71282	     33474 ns/op	    5074 B/op	      39 allocs/op
BenchmarkConcurrentJoin/regions=16 	      12	  95944021 ns/op	    333354 joins/s
PASS
ok  	telecast	3.047s
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)), "control_plane")
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" {
		t.Fatalf("platform = %s/%s", report.Goos, report.Goarch)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	join := report.Benchmarks[0]
	if join.Name != "BenchmarkJoin" || join.Iterations != 60835 || join.NsPerOp != 40313 {
		t.Fatalf("join = %+v", join)
	}
	if join.Metrics["joins/s"] != 24806 {
		t.Fatalf("joins/s = %v", join.Metrics["joins/s"])
	}
	if join.BytesPerOp == nil || *join.BytesPerOp != 3275 {
		t.Fatalf("B/op = %v", join.BytesPerOp)
	}
	if join.AllocsPerOp == nil || *join.AllocsPerOp != 29 {
		t.Fatalf("allocs/op = %v", join.AllocsPerOp)
	}
	if got := report.Benchmarks[2].Name; got != "BenchmarkConcurrentJoin/regions=16" {
		t.Fatalf("sub-benchmark name = %s", got)
	}
	if report.Benchmarks[1].Metrics != nil {
		t.Fatalf("view change should have no custom metrics: %v", report.Benchmarks[1].Metrics)
	}
}

func TestParseFailsOnFailedRun(t *testing.T) {
	in := "BenchmarkJoin 	 10 	 100 ns/op\n--- FAIL: TestSomething\nFAIL\n"
	if _, err := parse(bufio.NewScanner(strings.NewReader(in)), "s"); err == nil {
		t.Fatal("FAIL line not surfaced as an error")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",
		"BenchmarkBroken abc 1 ns/op",
		"BenchmarkBroken 10 xyz ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}

func guardReport(names []string, joins []float64) *Report {
	r := &Report{Suite: "s"}
	for i, name := range names {
		r.Benchmarks = append(r.Benchmarks, Result{
			Name:    name,
			NsPerOp: 1,
			Metrics: map[string]float64{"joins/s": joins[i]},
		})
	}
	return r
}

func writeBaseline(t *testing.T, r *Report) string {
	t.Helper()
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGuardThroughput(t *testing.T) {
	names := []string{"BenchmarkConcurrentJoin/regions=4-4", "BenchmarkWorkloadParallel-4"}
	base := writeBaseline(t, guardReport(names, []float64{100000, 30000}))
	// The fresh run carries a different GOMAXPROCS suffix: names must still
	// match after the -N marker is stripped.
	fresh := []string{"BenchmarkConcurrentJoin/regions=4-8", "BenchmarkWorkloadParallel-8"}

	// Within the allowed regression: passes.
	ok := guardReport(fresh, []float64{80000, 29000})
	if err := guardThroughput(ok, base, "BenchmarkConcurrentJoin/|BenchmarkWorkloadParallel$", 0.25); err != nil {
		t.Fatalf("in-bounds run failed the guard: %v", err)
	}
	// Past the floor: fails and names the benchmark.
	bad := guardReport(fresh, []float64{60000, 29000})
	err := guardThroughput(bad, base, "BenchmarkConcurrentJoin/|BenchmarkWorkloadParallel$", 0.25)
	if err == nil {
		t.Fatal("25%+ regression passed the guard")
	}
	if !strings.Contains(err.Error(), "BenchmarkConcurrentJoin/regions=4") {
		t.Fatalf("failure does not name the regressed benchmark: %v", err)
	}
}

func TestGuardSkipsBenchmarksMissingFromBaseline(t *testing.T) {
	base := writeBaseline(t, guardReport([]string{"BenchmarkWorkloadParallel-1"}, []float64{30000}))
	fresh := guardReport(
		[]string{"BenchmarkWorkloadParallel-4", "BenchmarkConcurrentJoin/regions=64-4"},
		[]float64{31000, 1},
	)
	if err := guardThroughput(fresh, base, "BenchmarkConcurrentJoin/|BenchmarkWorkloadParallel$", 0.25); err != nil {
		t.Fatalf("new benchmark absent from the baseline failed the guard: %v", err)
	}
}

func memReport(names []string, bytesPerOp, allocsPerOp []float64) *Report {
	r := &Report{Suite: "s"}
	for i, name := range names {
		b, a := bytesPerOp[i], allocsPerOp[i]
		r.Benchmarks = append(r.Benchmarks, Result{Name: name, NsPerOp: 1, BytesPerOp: &b, AllocsPerOp: &a})
	}
	return r
}

func TestGuardMemory(t *testing.T) {
	base := writeBaseline(t, memReport(
		[]string{"BenchmarkJoin-4", "BenchmarkFootprint/100k-4"},
		[]float64{3000, 2500}, []float64{29, 22}))
	fresh := []string{"BenchmarkJoin-8", "BenchmarkFootprint/100k-8"}

	// Within the allowed growth on both axes: passes.
	ok := memReport(fresh, []float64{3400, 2600}, []float64{30, 22})
	if err := guardMemory(ok, base, "BenchmarkJoin$|BenchmarkFootprint/", 0.25); err != nil {
		t.Fatalf("in-bounds run failed the memguard: %v", err)
	}
	// allocs/op past the ceiling: fails and names benchmark and unit.
	badAllocs := memReport(fresh, []float64{3000, 2500}, []float64{40, 22})
	err := guardMemory(badAllocs, base, "BenchmarkJoin$|BenchmarkFootprint/", 0.25)
	if err == nil {
		t.Fatal("25%+ allocs/op growth passed the memguard")
	}
	if !strings.Contains(err.Error(), "BenchmarkJoin") || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("failure does not name benchmark and unit: %v", err)
	}
	// B/op past the ceiling alone also fails.
	badBytes := memReport(fresh, []float64{3000, 4000}, []float64{29, 22})
	if err := guardMemory(badBytes, base, "BenchmarkJoin$|BenchmarkFootprint/", 0.25); err == nil {
		t.Fatal("25%+ B/op growth passed the memguard")
	}
}

func TestGuardMemorySkipsMissingData(t *testing.T) {
	// Baseline without memory columns (run without -benchmem): skipped, and
	// with nothing checked the guard must fail loudly.
	base := writeBaseline(t, guardReport([]string{"BenchmarkJoin-1"}, []float64{1000}))
	fresh := memReport([]string{"BenchmarkJoin-4"}, []float64{9999}, []float64{999})
	if err := guardMemory(fresh, base, "BenchmarkJoin$", 0.25); err == nil {
		t.Fatal("memguard with no comparable data must fail rather than silently pass")
	}
	// A benchmark new to the baseline is skipped while others are checked.
	base = writeBaseline(t, memReport([]string{"BenchmarkJoin-1"}, []float64{3000}, []float64{29}))
	fresh = memReport([]string{"BenchmarkJoin-4", "BenchmarkFootprint/100k-4"},
		[]float64{3000, 9999}, []float64{29, 999})
	if err := guardMemory(fresh, base, "BenchmarkJoin$|BenchmarkFootprint/", 0.25); err != nil {
		t.Fatalf("new benchmark absent from the baseline failed the memguard: %v", err)
	}
}

func TestGuardFailsWhenNothingChecked(t *testing.T) {
	base := writeBaseline(t, guardReport([]string{"BenchmarkJoin"}, []float64{1000}))
	fresh := guardReport([]string{"BenchmarkJoin"}, []float64{1000})
	if err := guardThroughput(fresh, base, "BenchmarkNoSuch", 0.25); err == nil {
		t.Fatal("guard matching nothing must fail rather than silently pass")
	}
}
