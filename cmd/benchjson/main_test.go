package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: telecast
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkJoin 	   60835	     40313 ns/op	     24806 joins/s	    3275 B/op	      29 allocs/op
BenchmarkViewChange 	   71282	     33474 ns/op	    5074 B/op	      39 allocs/op
BenchmarkConcurrentJoin/regions=16 	      12	  95944021 ns/op	    333354 joins/s
PASS
ok  	telecast	3.047s
`

func TestParse(t *testing.T) {
	report, err := parse(bufio.NewScanner(strings.NewReader(sample)), "control_plane")
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" {
		t.Fatalf("platform = %s/%s", report.Goos, report.Goarch)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	join := report.Benchmarks[0]
	if join.Name != "BenchmarkJoin" || join.Iterations != 60835 || join.NsPerOp != 40313 {
		t.Fatalf("join = %+v", join)
	}
	if join.Metrics["joins/s"] != 24806 {
		t.Fatalf("joins/s = %v", join.Metrics["joins/s"])
	}
	if join.BytesPerOp == nil || *join.BytesPerOp != 3275 {
		t.Fatalf("B/op = %v", join.BytesPerOp)
	}
	if join.AllocsPerOp == nil || *join.AllocsPerOp != 29 {
		t.Fatalf("allocs/op = %v", join.AllocsPerOp)
	}
	if got := report.Benchmarks[2].Name; got != "BenchmarkConcurrentJoin/regions=16" {
		t.Fatalf("sub-benchmark name = %s", got)
	}
	if report.Benchmarks[1].Metrics != nil {
		t.Fatalf("view change should have no custom metrics: %v", report.Benchmarks[1].Metrics)
	}
}

func TestParseFailsOnFailedRun(t *testing.T) {
	in := "BenchmarkJoin 	 10 	 100 ns/op\n--- FAIL: TestSomething\nFAIL\n"
	if _, err := parse(bufio.NewScanner(strings.NewReader(in)), "s"); err == nil {
		t.Fatal("FAIL line not surfaced as an error")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",
		"BenchmarkBroken abc 1 ns/op",
		"BenchmarkBroken 10 xyz ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
