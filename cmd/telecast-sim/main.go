// Command telecast-sim regenerates the paper's evaluation (§VII): every
// figure of Fig. 13, Fig. 14, and Fig. 15, plus the ablation studies from
// DESIGN.md. Results print as aligned tables, one series per column,
// matching the rows the paper plots.
//
// Usage:
//
//	telecast-sim -exp all            # everything (several minutes)
//	telecast-sim -exp fig13a        # one figure
//	telecast-sim -exp fig15b -seed 7 -audience 500
//	telecast-sim -exp concurrent    # join throughput vs LSC shard count
//	telecast-sim -exp fig14c -parallel   # admissions fan out across shards
//	telecast-sim -exp scenario -scenario diurnal          # catalog scenario,
//	                                                      # wall-clock executor
//	telecast-sim -exp scenario -scenario view-sweep -sim  # discrete-event replay
//	telecast-sim -exp scenario -scenario mass-departure -samples out.csv
//	telecast-sim -exp migration     # mobility scenario: cross-region handoffs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"telecast/internal/experiments"
	"telecast/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig13a|fig13b|fig13c|fig14a|fig14b|fig14c|fig15a|fig15b|ablations|churn|concurrent|scenario|migration|faults|all")
	seed := flag.Int64("seed", 42, "random seed for traces and capacity draws")
	audience := flag.Int("audience", 1000, "viewer count for fixed-size experiments")
	parallel := flag.Bool("parallel", false, "drive joins through the sharded JoinBatch fan-out (concurrent per-region LSC admission)")
	scenario := flag.String("scenario", "flash-churn", "catalog scenario for -exp scenario: "+strings.Join(workload.CatalogNames(), "|"))
	samples := flag.String("samples", "", "write the scenario's per-second time series to this file (.json for JSON Lines, CSV otherwise)")
	simMode := flag.Bool("sim", false, "replay -exp scenario on the deterministic discrete-event engine instead of the wall-clock parallel executor")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile after the experiment run; use -sample_index=alloc_space to see allocation sites (the run's state is torn down by then, so inuse is near-zero)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	setup := experiments.DefaultSetup(*seed)
	setup.Audience = *audience
	setup.Parallel = *parallel
	if err := run(*exp, setup, *scenario, *samples, *simMode); err != nil {
		// The deferred profile writer must run; don't log.Fatal past it.
		pprof.StopCPUProfile()
		log.Fatal(err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		// GC first so the inuse view holds only genuinely retained bytes;
		// the run's state is already torn down, so the useful view is
		// alloc_space (allocation sites across the whole run).
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}

func run(exp string, setup experiments.Setup, scenario, samplesPath string, simMode bool) error {
	runners := map[string]func(experiments.Setup) error{
		"fig13a":     runFig13a,
		"fig13b":     runFig13b,
		"fig13c":     runFig13c,
		"fig14a":     runFig14a,
		"fig14b":     runFig14b,
		"fig14c":     runFig14c,
		"fig15a":     runFig15a,
		"fig15b":     runFig15b,
		"ablations":  runAblations,
		"churn":      runChurn,
		"concurrent": runConcurrent,
		"scenario": func(s experiments.Setup) error {
			return runScenario(s, scenario, samplesPath, simMode)
		},
		"migration": runMigration,
		"faults":    runFaults,
	}
	if exp == "all" {
		order := []string{"fig13a", "fig13b", "fig13c", "fig14a", "fig14b", "fig14c", "fig15a", "fig15b", "ablations", "churn", "concurrent", "scenario", "migration", "faults"}
		for _, name := range order {
			if err := runners[name](setup); err != nil {
				return err
			}
		}
		return nil
	}
	runner, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return runner(setup)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func printFig13(res experiments.Fig13Result, valueName string) {
	labels := make([]string, len(res.Labels))
	copy(labels, res.Labels)
	sort.Strings(labels)
	w := newTab()
	fmt.Fprintf(w, "viewers\t%s\n", strings.Join(labels, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(labels))
		for i, l := range labels {
			cells[i] = fmt.Sprintf("%.3f", row.Values[l])
		}
		fmt.Fprintf(w, "%d\t%s\n", row.Viewers, strings.Join(cells, "\t"))
	}
	w.Flush()
	fmt.Printf("(values: %s)\n", valueName)
}

func runFig13a(setup experiments.Setup) error {
	header("Fig 13(a): CDN bandwidth (Mbps) required for rho=1")
	res, err := experiments.RunFig13a(setup)
	if err != nil {
		return err
	}
	printFig13(res, "peak CDN egress in Mbps, unbounded CDN")
	return nil
}

func runFig13b(setup experiments.Setup) error {
	header("Fig 13(b): fraction of streams served by CDN (cap 6000 Mbps)")
	res, err := experiments.RunFig13b(setup)
	if err != nil {
		return err
	}
	printFig13(res, "CDN-served fraction of live subscriptions")
	return nil
}

func runFig13c(setup experiments.Setup) error {
	header("Fig 13(c): acceptance ratio (CDN cap 6000 Mbps)")
	res, err := experiments.RunFig13c(setup)
	if err != nil {
		return err
	}
	printFig13(res, "acceptance ratio rho")
	return nil
}

func runFig14a(setup experiments.Setup) error {
	header("Fig 14(a): distribution of max delay layer per viewer")
	res, err := experiments.RunFig14a(setup)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "layer\tfraction\tcumulative")
	for l := range res.Fraction {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", l, res.Fraction[l], res.Cumulative[l])
	}
	w.Flush()
	fmt.Printf("layer-0 share: %.2f (paper ~0.30)   <=layer-4 share: %.2f (paper ~0.80)\n",
		res.Layer0Share, res.AtMost4Share)
	return nil
}

func runFig14b(setup experiments.Setup) error {
	header("Fig 14(b): CDF of accepted streams per viewer")
	res, err := experiments.RunFig14b(setup)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "streams\tcumulative fraction")
	for k, c := range res.CumulativeByCount {
		fmt.Fprintf(w, "%d\t%.3f\n", k, c)
	}
	w.Flush()
	fmt.Printf("all-streams share: %.2f (paper >0.70)   zero-streams share: %.2f (paper ~0.15)\n",
		res.AllStreamsShare, res.ZeroStreamsShare)
	return nil
}

func runFig14c(setup experiments.Setup) error {
	header("Fig 14(c): join and view-change delay CDFs")
	res, err := experiments.RunFig14c(setup)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "quantile\tjoin (ms)\tview change (ms)")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		fmt.Fprintf(w, "%.2f\t%.0f\t%.0f\n", q,
			res.JoinDelays.Quantile(q)*1000, res.ViewChangeDelays.Quantile(q)*1000)
	}
	w.Flush()
	fmt.Printf("join p95 %.0f ms (paper: up to ~1500 ms); view change p95 %.0f ms (paper: within ~500 ms)\n",
		res.Join95th*1000, res.ViewChange95th*1000)
	return nil
}

func printFig15(res experiments.Fig15Result, xName string) {
	w := newTab()
	fmt.Fprintf(w, "%s\ttelecast\trandom\tgain\n", xName)
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%g\t%.3f\t%.3f\t%+.3f\n", row.X, row.TeleCast, row.Random, row.TeleCast-row.Random)
	}
	w.Flush()
}

func runFig15a(setup experiments.Setup) error {
	header("Fig 15(a): TeleCast vs Random — acceptance vs outbound bandwidth")
	res, err := experiments.RunFig15a(setup)
	if err != nil {
		return err
	}
	printFig15(res, "obw Mbps")
	return nil
}

func runFig15b(setup experiments.Setup) error {
	header("Fig 15(b): TeleCast vs Random — acceptance vs audience size (obw 2-14)")
	res, err := experiments.RunFig15b(setup)
	if err != nil {
		return err
	}
	printFig15(res, "viewers")
	return nil
}

func runAblations(setup experiments.Setup) error {
	header("Ablation A1: outbound allocation policies (Fig 8 trade-off)")
	outRows, err := experiments.RunAblationOutbound(setup)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "obw\trr viewers\trr streams/viewer\tprio viewers\tprio streams/viewer\teq viewers\teq streams/viewer")
	for _, r := range outRows {
		fmt.Fprintf(w, "%g\t%d\t%.2f\t%d\t%.2f\t%d\t%.2f\n",
			r.OutboundMbps,
			r.RoundRobin.Admitted, r.RoundRobin.MeanStreams,
			r.PriorityOnly.Admitted, r.PriorityOnly.MeanStreams,
			r.EqualSplit.Admitted, r.EqualSplit.MeanStreams)
	}
	w.Flush()

	header("Ablation A2: degree push-down vs FIFO attachment")
	pdRows, err := experiments.RunAblationPushdown(setup)
	if err != nil {
		return err
	}
	w = newTab()
	fmt.Fprintln(w, "viewers\tpushdown rho\tfifo rho\tpushdown depth\tfifo depth")
	for _, r := range pdRows {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.1f\t%.1f\n",
			r.Viewers, r.PushDown.Acceptance, r.FIFO.Acceptance, r.PushDownDepth, r.FIFODepth)
	}
	w.Flush()

	header("Ablation A3: layer push-down fade-out (R=tau*r) vs naive placement")
	fadeRows, err := experiments.RunAblationLayerFade(setup)
	if err != nil {
		return err
	}
	w = newTab()
	fmt.Fprintln(w, "viewers\tmean max layer (fade-out)\tmean max layer (naive)")
	for _, r := range fadeRows {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\n", r.Viewers, r.FadeMeanMaxLayer, r.NaiveMeanMaxLayer)
	}
	w.Flush()

	header("Ablation A4: view grouping under view diversity")
	grRows, err := experiments.RunAblationGrouping(setup)
	if err != nil {
		return err
	}
	w = newTab()
	fmt.Fprintln(w, "distinct views\tacceptance\tcdn fraction")
	for _, r := range grRows {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", r.DistinctViews, r.Acceptance, r.CDNFraction)
	}
	w.Flush()

	header("Ablation A5: two-phase view change vs plain re-join")
	vc, err := experiments.RunAblationViewChange(setup)
	if err != nil {
		return err
	}
	w = newTab()
	fmt.Fprintln(w, "mode\tmedian (ms)\tp95 (ms)")
	fmt.Fprintf(w, "two-phase (CDN fast path)\t%.0f\t%.0f\n", vc.TwoPhaseMedian*1000, vc.TwoPhaseP95*1000)
	fmt.Fprintf(w, "plain re-join\t%.0f\t%.0f\n", vc.PlainMedian*1000, vc.PlainP95*1000)
	w.Flush()
	return nil
}

func runConcurrent(setup experiments.Setup) error {
	header("Concurrent joins: batched admission throughput vs LSC shard count")
	rows, err := experiments.RunConcurrentJoin(setup, []int{1, 4, 16})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "regions\tviewers\tadmitted\trejected\telapsed\tjoins/s\tjoin p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\t%.0f\t%v\n", r.Regions, r.Viewers, r.Admitted, r.Rejected,
			r.Elapsed.Round(time.Millisecond), r.JoinsPerSec, r.JoinP99.Round(time.Microsecond))
	}
	w.Flush()
	fmt.Println("(admitted/rejected from the telemetry outcome counters, cross-checked against the Controller.Subscribe event stream)")
	base := rows[0].JoinsPerSec
	if base > 0 {
		fmt.Printf("speedup vs 1 region: ")
		for i, r := range rows {
			if i > 0 {
				fmt.Printf("  ")
			}
			fmt.Printf("%d regions ×%.2f", r.Regions, r.JoinsPerSec/base)
		}
		fmt.Println()
	}
	return nil
}

func runScenario(setup experiments.Setup, name, samplesPath string, simMode bool) error {
	mode := "wall-clock parallel executor"
	if simMode {
		mode = "discrete-event replay"
	}
	header(fmt.Sprintf("Scenario %q (%s)", name, mode))
	// Validate the name before touching the samples file, so a typo'd
	// scenario never truncates a previous run's output.
	if _, err := workload.FromCatalog(name, workload.Knobs{}); err != nil {
		return err
	}
	opts := experiments.ScenarioOptions{Wallclock: !simMode}
	var out *os.File
	if samplesPath != "" {
		f, err := os.Create(samplesPath)
		if err != nil {
			return err
		}
		out = f
		defer out.Close()
		if strings.HasSuffix(samplesPath, ".json") {
			opts.Sinks = append(opts.Sinks, workload.NewJSONSink(f))
		} else {
			opts.Sinks = append(opts.Sinks, workload.NewCSVSink(f))
		}
	}
	res, err := experiments.RunScenario(setup, name, opts)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "events\tjoins\trejected\tleaves\tview changes\tpeak\tregions\telapsed\tjoins/s")
	fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%.0f\n",
		res.Events, res.Joins, res.Rejected, res.Leaves, res.ViewChanges,
		res.PeakViewers, res.Regions, res.Elapsed.Round(time.Millisecond), res.JoinsPerSec)
	w.Flush()
	fmt.Printf("acceptance: final %.3f, minimum %.3f; event stream: %d accepted / %d rejected (dropped %d)\n",
		res.FinalAcceptance, res.MinAcceptance, res.StreamAccepted, res.StreamRejected, res.EventsDropped)
	workload.WriteLatency(os.Stdout, res.Latency)
	if samplesPath != "" {
		fmt.Printf("samples written to %s\n", samplesPath)
	}
	if !simMode {
		fmt.Printf("(achieved joins/s from the wall-clock executor: %d-region JoinBatch/DepartBatch fan-outs)\n", res.Regions)
	}
	return nil
}

func runMigration(setup experiments.Setup) error {
	header("Migration: mobility scenario — cross-region shard-to-shard handoffs")
	res, err := experiments.RunScenario(setup, "mobility", experiments.ScenarioOptions{Wallclock: true})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "events\tjoins\trejected\tleaves\tmigrations\tbounced\tview changes\tpeak\tregions\telapsed")
	fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
		res.Events, res.Joins, res.Rejected, res.Leaves, res.Migrations, res.MigrationsBounced,
		res.ViewChanges, res.PeakViewers, res.Regions, res.Elapsed.Round(time.Millisecond))
	w.Flush()
	fmt.Printf("acceptance: final %.3f, minimum %.3f; every handoff ended rebound, restored, or departed (invariants + CDN accounting validated after the run)\n",
		res.FinalAcceptance, res.MinAcceptance)
	return nil
}

func runFaults(setup experiments.Setup) error {
	header("Faults: shard kill/recover + CDN collapse under churn")
	rows, err := experiments.RunFaults(setup)
	if err != nil {
		return err
	}
	// Final counters go through the same formatter as `telecast-node replay`,
	// so a chaos run and a wire replay read line-for-line identically.
	for _, r := range rows {
		fmt.Printf("\n--- %s on %s executor (%d events, %d evacuations) ---\n",
			r.Scenario, r.Executor, r.Events, r.Evacuations)
		workload.WriteSummary(os.Stdout, r.Result)
	}
	fmt.Println("\nevery run ended with all shards recovered, the online validator clean, and event-stream admissions matching the runner's count")
	return nil
}

func runChurn(setup experiments.Setup) error {
	header("Churn: flash crowd + Poisson churn + view changes (60 s)")
	res, err := experiments.RunChurn(setup)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "t (s)\tviewers\tlive streams\tacceptance\tcdn Mbps\tcdn fraction")
	for i, s := range res.Samples {
		if i%5 != 4 {
			continue // print every 5th sample
		}
		fmt.Fprintf(w, "%.0f\t%d\t%d\t%.3f\t%.0f\t%.3f\n",
			s.At.Seconds(), s.Viewers, s.LiveStreams, s.Acceptance, s.CDNMbps, s.CDNFraction)
	}
	w.Flush()
	fmt.Printf("events: %d joins (%d rejected), %d leaves, %d view changes; peak audience %d\n",
		res.Joins, res.Rejected, res.Leaves, res.ViewChanges, res.PeakViewers)
	fmt.Printf("acceptance: final %.3f, minimum over run %.3f (invariants validated every second)\n",
		res.FinalAcceptance, res.MinAcceptance)
	return nil
}
