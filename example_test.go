package telecast_test

import (
	"fmt"

	"telecast"
)

// Example builds the paper's evaluation session, admits two viewers — the
// first seeds the peer layer, the second rides on it — and prints the
// hybrid CDN/P2P split.
func Example() {
	producers, err := telecast.NewSession(
		telecast.NewRingSite("A", 8, 2.0, 10),
		telecast.NewRingSite("B", 8, 2.0, 10),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	// A deterministic latency substrate with a single region keeps this
	// example's output stable.
	lat, err := telecast.GenerateLatencyMatrix(telecast.LatencyConfig{
		Nodes: 16, Regions: 1, IntraMean: 20e6, InterMean: 80e6, Sigma: 0.3, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ctrl, err := telecast.NewController(telecast.DefaultConfig(producers, lat))
	if err != nil {
		fmt.Println(err)
		return
	}
	view := telecast.NewUniformView(producers, 0)
	seed, _ := ctrl.Join("seed", 12, 12, view)
	leaf, _ := ctrl.Join("leaf", 12, 0, view)
	fmt.Printf("seed admitted=%v streams=%d\n", seed.Result.Admitted, len(seed.Result.Accepted))
	fmt.Printf("leaf admitted=%v streams=%d\n", leaf.Result.Admitted, len(leaf.Result.Accepted))
	st := ctrl.Stats()
	fmt.Printf("via CDN=%d via P2P=%d\n", st.Overlay.ViaCDN, st.Overlay.ViaP2P)
	// Output:
	// seed admitted=true streams=6
	// leaf admitted=true streams=6
	// via CDN=6 via P2P=6
}
