package telecast_test

import (
	"context"
	"errors"
	"fmt"

	"telecast"
)

// Example builds the paper's evaluation session, admits two viewers — the
// first seeds the peer layer, the second rides on it — and prints the
// hybrid CDN/P2P split.
func Example() {
	producers, err := telecast.NewSession(
		telecast.NewRingSite("A", 8, 2.0, 10),
		telecast.NewRingSite("B", 8, 2.0, 10),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	// A deterministic latency substrate with a single region keeps this
	// example's output stable.
	lat, err := telecast.GenerateLatencyMatrix(telecast.LatencyConfig{
		Nodes: 16, Regions: 1, IntraMean: 20e6, InterMean: 80e6, Sigma: 0.3, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ctrl, err := telecast.NewController(producers, lat)
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx := context.Background()
	view := telecast.NewUniformView(producers, 0)
	seed, _ := ctrl.Join(ctx, "seed", 12, 12, view)
	leaf, _ := ctrl.Join(ctx, "leaf", 12, 0, view)
	fmt.Printf("seed admitted=%v streams=%d\n", seed.Result.Admitted, len(seed.Result.Accepted))
	fmt.Printf("leaf admitted=%v streams=%d\n", leaf.Result.Admitted, len(leaf.Result.Accepted))
	st := ctrl.Stats()
	fmt.Printf("via CDN=%d via P2P=%d\n", st.Overlay.ViaCDN, st.Overlay.ViaP2P)
	// Output:
	// seed admitted=true streams=6
	// leaf admitted=true streams=6
	// via CDN=6 via P2P=6
}

// ExampleNewController_options assembles a controller with functional
// options: a tight CDN egress budget, a custom delay-layer geometry, and
// the strict view-change fast path.
func ExampleNewController_options() {
	producers, err := telecast.NewSession(telecast.NewRingSite("A", 8, 2.0, 10))
	if err != nil {
		fmt.Println(err)
		return
	}
	lat, err := telecast.GenerateLatencyMatrix(telecast.LatencyConfig{
		Nodes: 16, Regions: 1, IntraMean: 20e6, InterMean: 80e6, Sigma: 0.3, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cdnCfg := telecast.DefaultCDNConfig()
	cdnCfg.OutboundCapacityMbps = 120
	ctrl, err := telecast.NewController(producers, lat,
		telecast.WithCDN(cdnCfg),
		telecast.WithHierarchy(300e6, 2, 65e9), // d_buff=300ms, κ=2, d_max=65s
		telecast.WithStrictFastPath(true),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	out, err := ctrl.Join(context.Background(), "viewer", 12, 4, telecast.NewUniformView(producers, 0))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("admitted=%v streams=%d\n", out.Result.Admitted, len(out.Result.Accepted))
	// Output:
	// admitted=true streams=3
}

// ExampleController_join_rejected shows the typed-error contract: an
// admission-control rejection matches ErrRejected with errors.Is, and
// errors.As retrieves the structured cause — here the Δ-bounded CDN egress
// is exhausted and no peer layer exists for the second viewer's view group.
func ExampleController_join_rejected() {
	producers, err := telecast.NewSession(telecast.NewRingSite("A", 8, 2.0, 10))
	if err != nil {
		fmt.Println(err)
		return
	}
	lat, err := telecast.GenerateLatencyMatrix(telecast.LatencyConfig{
		Nodes: 16, Regions: 1, IntraMean: 20e6, InterMean: 80e6, Sigma: 0.3, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	cdnCfg := telecast.DefaultCDNConfig()
	cdnCfg.OutboundCapacityMbps = 6 // room for one viewer's three streams
	ctrl, err := telecast.NewController(producers, lat, telecast.WithCDN(cdnCfg))
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx := context.Background()
	if _, err := ctrl.Join(ctx, "first", 12, 0, telecast.NewUniformView(producers, 0)); err != nil {
		fmt.Println(err)
		return
	}
	// A different gaze angle forms a new view group: its trees are empty
	// and the CDN has nothing left.
	_, err = ctrl.Join(ctx, "second", 12, 0, telecast.NewUniformView(producers, 3.14))
	fmt.Println("rejected:", errors.Is(err, telecast.ErrRejected))
	var rej *telecast.RejectionError
	if errors.As(err, &rej) {
		fmt.Printf("viewer=%s reason=%s\n", rej.Viewer, rej.Reason)
	}
	// Output:
	// rejected: true
	// viewer=second reason=cdn egress exhausted
}

// ExampleController_subscribe consumes the control plane's event stream: a
// join and a departure arrive as typed events, in the order the shard
// processed them.
func ExampleController_subscribe() {
	producers, err := telecast.NewSession(telecast.NewRingSite("A", 8, 2.0, 10))
	if err != nil {
		fmt.Println(err)
		return
	}
	lat, err := telecast.GenerateLatencyMatrix(telecast.LatencyConfig{
		Nodes: 16, Regions: 1, IntraMean: 20e6, InterMean: 80e6, Sigma: 0.3, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ctrl, err := telecast.NewController(producers, lat)
	if err != nil {
		fmt.Println(err)
		return
	}
	sub := ctrl.Subscribe()
	defer sub.Close()

	ctx := context.Background()
	view := telecast.NewUniformView(producers, 0)
	if _, err := ctrl.Join(ctx, "viewer", 12, 8, view); err != nil {
		fmt.Println(err)
		return
	}
	if err := ctrl.Leave(ctx, "viewer"); err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 2; i++ {
		ev := <-sub.Events()
		fmt.Printf("%s %s (region %d, seq %d)\n", ev.Kind, ev.Viewer, ev.Region, ev.Seq)
	}
	// Output:
	// join-accepted viewer (region 0, seq 1)
	// departed viewer (region 0, seq 2)
}
