// Benchmarks regenerating every figure of the paper's evaluation (§VII).
// Each BenchmarkFigXX runs the corresponding experiment end to end and
// reports the figure's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation and its
// numbers in one run. Micro-benchmarks for the hot control-plane paths
// (join, degree push-down, subscription) follow.
package telecast_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"telecast"
	"telecast/internal/experiments"
	"telecast/internal/telemetry"
	"telecast/internal/workload"
)

// benchSetup uses the paper's full 1000-viewer scale.
func benchSetup() experiments.Setup {
	return experiments.DefaultSetup(42)
}

func BenchmarkFig13a(b *testing.B) {
	setup := benchSetup()
	setup.Sizes = []int{200, 600, 1000}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13a(setup)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Values["obw=0"], "cdnMbps@obw0")
		b.ReportMetric(last.Values["obw=0-12"], "cdnMbps@obw0-12")
	}
}

func BenchmarkFig13b(b *testing.B) {
	setup := benchSetup()
	setup.Sizes = []int{200, 600, 1000}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13b(setup)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Values["obw=8"], "cdnFrac@obw8")
		b.ReportMetric(last.Values["obw=4-14"], "cdnFrac@obw4-14")
	}
}

func BenchmarkFig13c(b *testing.B) {
	setup := benchSetup()
	setup.Sizes = []int{200, 600, 1000}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13c(setup)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Values["obw=0"], "rho@obw0")
		b.ReportMetric(last.Values["obw=8"], "rho@obw8")
	}
}

func BenchmarkFig14a(b *testing.B) {
	setup := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14a(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Layer0Share, "layer0Share")
		b.ReportMetric(res.AtMost4Share, "atMost4Share")
	}
}

func BenchmarkFig14b(b *testing.B) {
	setup := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14b(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AllStreamsShare, "allStreamsShare")
		b.ReportMetric(res.ZeroStreamsShare, "zeroStreamsShare")
	}
}

func BenchmarkFig14c(b *testing.B) {
	setup := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14c(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Join95th*1000, "joinP95ms")
		b.ReportMetric(res.ViewChange95th*1000, "viewChangeP95ms")
	}
}

func BenchmarkFig15a(b *testing.B) {
	setup := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15a(setup)
		if err != nil {
			b.Fatal(err)
		}
		// The paper's headline: the mid-sweep gain over Random.
		var maxGain float64
		for _, row := range res.Rows {
			if gain := row.TeleCast - row.Random; gain > maxGain {
				maxGain = gain
			}
		}
		b.ReportMetric(maxGain, "maxGainOverRandom")
	}
}

func BenchmarkFig15b(b *testing.B) {
	setup := benchSetup()
	setup.Sizes = []int{200, 600, 1000}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15b(setup)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.TeleCast, "telecastRho@1000")
		b.ReportMetric(last.Random, "randomRho@1000")
	}
}

func BenchmarkAblationOutbound(b *testing.B) {
	setup := benchSetup()
	setup.Audience = 600
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationOutbound(setup)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.RoundRobin.MeanStreams, "rrStreamsPerViewer")
		b.ReportMetric(last.PriorityOnly.MeanStreams, "prioStreamsPerViewer")
	}
}

func BenchmarkAblationPushdown(b *testing.B) {
	setup := benchSetup()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationPushdown(setup)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.PushDownDepth, "pushdownDepth")
		b.ReportMetric(last.FIFODepth, "fifoDepth")
	}
}

func BenchmarkAblationGrouping(b *testing.B) {
	setup := benchSetup()
	setup.Audience = 600
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationGrouping(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].CDNFraction, "cdnFrac@1view")
		b.ReportMetric(rows[len(rows)-1].CDNFraction, "cdnFrac@8views")
	}
}

// BenchmarkJoin measures control-plane admission throughput at a true
// 1000-viewer steady state: every iteration admits one viewer into the
// populated overlay and departs the oldest one (full victim recovery), so
// the system size — and therefore the cost of the op being measured — does
// not depend on b.N. The joins/s metric is the headline the perf
// trajectory (BENCH_control_plane.json) tracks.
//
// The telemetry=off/on variants pin the observability tax: with the
// collector disarmed every hook is one atomic load, and the armed variant
// must stay within the bench guard's delta of the disarmed one.
func BenchmarkJoin(b *testing.B) {
	b.Run("telemetry=off", func(b *testing.B) { benchJoin(b, false) })
	b.Run("telemetry=on", func(b *testing.B) { benchJoin(b, true) })
}

func benchJoin(b *testing.B, telemetryOn bool) {
	producers, err := telecast.NewSession(
		telecast.NewRingSite("A", 8, 2.0, 10),
		telecast.NewRingSite("B", 8, 2.0, 10),
	)
	if err != nil {
		b.Fatal(err)
	}
	const fleet = 1000
	lat, err := telecast.GenerateLatencyMatrix(telecast.DefaultLatencyConfig(fleet+100, 42))
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := telecast.NewController(producers, lat,
		telecast.WithCDN(unboundedCDN()), // unbounded: measure algorithm cost
		telecast.WithTelemetry(telemetryOn))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	view := telecast.NewUniformView(producers, 0)
	for i := 0; i < fleet; i++ {
		id := telecast.ViewerID(fmt.Sprintf("w%06d", i))
		if _, err := ctrl.Join(ctx, id, 12, float64(i%13), view); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join := telecast.ViewerID(fmt.Sprintf("w%06d", fleet+i))
		if _, err := ctrl.Join(ctx, join, 12, float64((fleet+i)%13), view); err != nil {
			b.Fatal(err)
		}
		leave := telecast.ViewerID(fmt.Sprintf("w%06d", i))
		if err := ctrl.Leave(ctx, leave); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "joins/s")
	if telemetryOn {
		// Sanity: the armed collector actually recorded the run.
		snap := ctrl.Telemetry().Snapshot()
		if got := snap.Ops[telemetry.OpJoin].Total().Count; got == 0 {
			b.Fatal("telemetry=on recorded no joins")
		}
	}
}

// unboundedCDN is the paper's CDN with the egress cap removed.
func unboundedCDN() telecast.CDNConfig {
	cfg := telecast.DefaultCDNConfig()
	cfg.OutboundCapacityMbps = 0
	return cfg
}

// BenchmarkViewChange measures the full two-phase view change (leave trees,
// victim recovery, re-join, subscription propagation) in a populated overlay.
func BenchmarkViewChange(b *testing.B) {
	producers, err := telecast.NewSession(
		telecast.NewRingSite("A", 8, 2.0, 10),
		telecast.NewRingSite("B", 8, 2.0, 10),
	)
	if err != nil {
		b.Fatal(err)
	}
	lat, err := telecast.GenerateLatencyMatrix(telecast.DefaultLatencyConfig(700, 42))
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := telecast.NewController(producers, lat, telecast.WithCDN(unboundedCDN()))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	views := []telecast.View{
		telecast.NewUniformView(producers, 0),
		telecast.NewUniformView(producers, 1.5),
	}
	const fleet = 500
	for i := 0; i < fleet; i++ {
		id := telecast.ViewerID(fmt.Sprintf("w%06d", i))
		if _, err := ctrl.Join(ctx, id, 12, float64(i%13), views[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := telecast.ViewerID(fmt.Sprintf("w%06d", i%fleet))
		if _, err := ctrl.ChangeView(ctx, id, views[(i+1)%len(views)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentJoin measures batched join throughput as the region
// count — and so the number of concurrently-locked LSC shards — grows. The
// joins/s custom metric is the headline: with the sharded control plane it
// should rise with the region count (16-region throughput > 1-region). The
// "/sub" variants run the same batch with one event-stream subscriber
// attached and must stay within ~10% of the bare runs: observation flows
// through per-shard ring buffers, never through the admission path's locks.
func BenchmarkConcurrentJoin(b *testing.B) {
	for _, regions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("regions=%d", regions), func(b *testing.B) {
			benchConcurrentJoin(b, regions, false)
		})
		b.Run(fmt.Sprintf("regions=%d/sub", regions), func(b *testing.B) {
			benchConcurrentJoin(b, regions, true)
		})
	}
}

func benchConcurrentJoin(b *testing.B, regions int, subscribe bool) {
	const audience = 2000
	producers, err := telecast.NewSession(
		telecast.NewRingSite("A", 8, 2.0, 10),
		telecast.NewRingSite("B", 8, 2.0, 10),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	latCfg := telecast.DefaultLatencyConfig(audience+regions+1, 42)
	latCfg.Regions = regions
	var joined int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lat, err := telecast.GenerateLatencyMatrix(latCfg)
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := telecast.NewController(producers, lat,
			telecast.WithCDN(unboundedCDN())) // unbounded: measure control-plane cost
		if err != nil {
			b.Fatal(err)
		}
		var sub *telecast.Subscription
		drained := make(chan int, 1)
		if subscribe {
			sub = ctrl.Subscribe()
			go func() {
				n := 0
				for range sub.Events() {
					n++
				}
				drained <- n
			}()
		}
		view := telecast.NewUniformView(producers, 0)
		reqs := make([]telecast.JoinRequest, audience)
		for j := range reqs {
			reqs[j] = telecast.JoinRequest{
				ID:           telecast.ViewerID(fmt.Sprintf("w%06d", j)),
				InboundMbps:  12,
				OutboundMbps: float64(j % 13),
				View:         view,
			}
		}
		b.StartTimer()
		for _, out := range ctrl.JoinBatch(ctx, reqs) {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
		joined += audience
		b.StopTimer()
		if subscribe {
			// Flush before Close: delivery is asynchronous, and closing an
			// undelivered subscription discards its backlog.
			sub.Flush()
			sub.Close()
			ctrl.Close()
			if n := <-drained; n == 0 {
				b.Fatal("subscriber saw no events")
			}
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(joined)/b.Elapsed().Seconds(), "joins/s")
}

// BenchmarkMigration measures the cross-region handoff at a populated
// steady state: a 1000-viewer fleet spread over 4 LSC shards, each
// iteration re-homing one viewer to the next region — source extract with
// victim recovery, destination re-admission from the preserved request,
// route rebind. The migrations/s metric joins the perf trajectory.
func BenchmarkMigration(b *testing.B) {
	producers, err := telecast.NewSession(
		telecast.NewRingSite("A", 8, 2.0, 10),
		telecast.NewRingSite("B", 8, 2.0, 10),
	)
	if err != nil {
		b.Fatal(err)
	}
	const fleet = 1000
	const regions = 4
	latCfg := telecast.DefaultLatencyConfig(fleet+fleet/2, 42)
	latCfg.Regions = regions
	lat, err := telecast.GenerateLatencyMatrix(latCfg)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := telecast.NewController(producers, lat,
		telecast.WithCDN(unboundedCDN())) // unbounded: measure handoff cost
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	view := telecast.NewUniformView(producers, 0)
	home := make([]telecast.Region, fleet)
	for i := 0; i < fleet; i++ {
		home[i] = telecast.Region(i % regions)
		_, err := ctrl.Admit(ctx, telecast.JoinRequest{
			ID:          telecast.ViewerID(fmt.Sprintf("w%06d", i)),
			InboundMbps: 12, OutboundMbps: float64(i % 13),
			View: view, Region: telecast.InRegion(home[i]),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % fleet
		next := telecast.Region((int(home[k]) + 1) % regions)
		id := telecast.ViewerID(fmt.Sprintf("w%06d", k))
		out, err := ctrl.Migrate(ctx, id, telecast.MigrateRequest{To: next, Reason: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if out.Restored || out.Departed {
			b.Fatalf("handoff bounced at iteration %d", i)
		}
		home[k] = next
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "migrations/s")
}

// BenchmarkWorkloadParallel measures the wall-clock scenario executor: a
// regional-hotspot schedule replayed through JoinBatch/DepartBatch fan-outs
// across the LSC shards. The joins/s metric is the achieved admission
// throughput of the full workload loop (binning, batching, tallying), the
// number the scenario experiment reports — tracked in the perf trajectory
// alongside the raw batch benchmarks.
func BenchmarkWorkloadParallel(b *testing.B) {
	const seed = 42
	sc, err := workload.FromCatalog("regional-hotspot", workload.Knobs{
		Seed: seed, Audience: 1000, Duration: 30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	events, err := workload.Collect(sc, seed)
	if err != nil {
		b.Fatal(err)
	}
	joins := 0
	for _, ev := range events {
		if ev.Kind == workload.EventJoin {
			joins++
		}
	}
	producers, err := telecast.NewSession(
		telecast.NewRingSite("A", 8, 2.0, 10),
		telecast.NewRingSite("B", 8, 2.0, 10),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var admissions int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lat, err := telecast.GenerateLatencyMatrix(telecast.DefaultLatencyConfig(joins+16, seed))
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := telecast.NewController(producers, lat, telecast.WithCDN(unboundedCDN()))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := workload.NewParallelRunner().Run(ctx, ctrl, producers,
			workload.Schedule("regional-hotspot", events), workload.WithSeed(seed))
		if err != nil {
			b.Fatal(err)
		}
		admissions += res.Joins + res.Rejected
	}
	b.ReportMetric(float64(admissions)/b.Elapsed().Seconds(), "joins/s")
}

// BenchmarkChurn runs the dynamic scenario: flash crowd, Poisson churn,
// view changes, invariants validated every simulated second.
func BenchmarkChurn(b *testing.B) {
	setup := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunChurn(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalAcceptance, "finalAcceptance")
		b.ReportMetric(float64(res.PeakViewers), "peakViewers")
	}
}

// BenchmarkAblationLayerFade contrasts the ℜ=τr fade-out placement with the
// naive bottom-of-layer placement (ablation A3).
func BenchmarkAblationLayerFade(b *testing.B) {
	setup := benchSetup()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblationLayerFade(setup)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.FadeMeanMaxLayer, "fadeMeanMaxLayer")
		b.ReportMetric(last.NaiveMeanMaxLayer, "naiveMeanMaxLayer")
	}
}

// BenchmarkAblationViewChange contrasts the two-phase view change with a
// plain re-join (ablation A5).
func BenchmarkAblationViewChange(b *testing.B) {
	setup := benchSetup()
	setup.Audience = 600
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunAblationViewChange(setup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.TwoPhaseP95*1000, "twoPhaseP95ms")
		b.ReportMetric(row.PlainP95*1000, "plainP95ms")
	}
}
